// Command tmsim regenerates the paper's evaluation artifacts on the
// simulated machine:
//
//	tmsim -experiment fig5   # Figure 5: speedup vs. thread count
//	tmsim -experiment fig6   # Figure 6: HW abort-reason breakdown
//	tmsim -experiment fig7   # Figure 7: software-failover microbenchmark
//	tmsim -experiment fig8   # Figure 8: contention-policy sensitivity
//	tmsim -experiment ablate # design-choice ablations (UFO mitigations, L1, otable, quantum)
//	tmsim -experiment extended # extension workloads beyond the paper (ssca2, intruder, labyrinth)
//	tmsim -experiment params # Table 4: simulation parameters
//	tmsim -experiment all    # everything above
//
// -scale small runs quick versions; -scale full (default) runs the sizes
// recorded in EXPERIMENTS.md. Runs are deterministic for a given -seed.
//
// Independent sweep cells fan out across -parallel worker goroutines
// (default: one per CPU; -parallel 1 forces the serial order). Every
// cell owns its simulated machine and RNG seed, so the output is
// bit-identical for every worker count. -progress reports cells
// done/total with an ETA on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5 | fig6 | fig7 | fig8 | ablate | extended | footprints | params | all")
	scaleName := flag.String("scale", "full", "small | full")
	seed := flag.Uint64("seed", 1, "machine RNG seed")
	seeds := flag.Int("seeds", 0, "run fig5 across seeds 1..N and report mean/min/max")
	csvPath := flag.String("csv", "", "also write the fig5 sweep as CSV to this file")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = one per CPU, 1 = serial)")
	progress := flag.Bool("progress", false, "report sweep progress (cells done/total, ETA) on stderr")
	flag.Parse()

	scale := harness.ScaleFull
	switch *scaleName {
	case "full":
	case "small":
		scale = harness.ScaleSmall
	default:
		fmt.Fprintf(os.Stderr, "tmsim: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	opt := harness.DefaultOptions()
	opt.Params.Seed = *seed

	runner := harness.Parallel(*parallel)
	if *progress {
		runner.Progress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "\r  [%d/%d cells, elapsed %v, eta %v]   ",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmsim: %v\n", err)
			os.Exit(1)
		}
	}

	run := func(name string) {
		start := time.Now()
		switch name {
		case "params":
			harness.PrintParams(os.Stdout, opt)
		case "fig5":
			if *seeds > 1 {
				stats, err := runner.Figure5Seeds(opt, scale, *seeds)
				harness.PrintSeedStats(os.Stdout, stats)
				fail(err)
				break
			}
			data, err := runner.Figure5(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				fail(err)
				fail(harness.WriteFigure5CSV(f, data, scale))
				fail(f.Close())
				fmt.Printf("  [csv written to %s]\n", *csvPath)
			}
		case "fig6":
			rows, err := runner.Figure6(opt, scale)
			harness.PrintFigure6(os.Stdout, rows)
			fail(err)
		case "fig7":
			d, err := runner.Figure7(opt, scale)
			harness.PrintFigure7(os.Stdout, d)
			fail(err)
		case "fig8":
			rows, err := runner.Figure8(opt, scale)
			harness.PrintFigure8(os.Stdout, rows)
			fail(err)
		case "ablate":
			rows, err := runner.Ablations(opt, scale)
			harness.PrintAblations(os.Stdout, rows)
			fail(err)
		case "extended":
			data, err := runner.Extended(opt, scale)
			harness.PrintFigure5(os.Stdout, data, scale)
			fail(err)
		case "footprints":
			rows, err := runner.Footprints(opt, scale)
			harness.PrintFootprints(os.Stdout, rows)
			fail(err)
		default:
			fmt.Fprintf(os.Stderr, "tmsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"params", "fig5", "fig6", "fig7", "fig8", "ablate", "extended", "footprints"} {
			run(name)
		}
		return
	}
	run(*experiment)
}
