package main

import (
	"io"
	"strings"
	"testing"
)

// TestParseConfigValidation is the table-driven contract for tmsim's
// flag validation: contradictory combinations are rejected with a clear
// error before any simulation runs.
func TestParseConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means the args must parse
	}{
		{"defaults", nil, ""},
		{"sweep with outputs", []string{"-experiment", "fig5", "-scale", "small", "-metrics-out", "m.json"}, ""},
		{"traced cell", []string{"-trace-out", "t.json", "-trace-format", "chrome", "-trace-workload", "genome", "-trace-system", "ufo-hybrid", "-trace-threads", "2"}, ""},
		{"contention json", []string{"-contention-out", "c.json"}, ""},
		{"contention tuned", []string{"-contention-out", "c.html", "-report", "html", "-contention-topk", "4", "-timeseries-window", "5000"}, ""},
		{"contention with traced cell", []string{"-trace-out", "t.json", "-contention-out", "c.json"}, ""},
		{"profiles", []string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"}, ""},

		{"unknown scale", []string{"-scale", "medium"}, "unknown scale"},
		{"unknown experiment", []string{"-experiment", "fig9"}, "unknown experiment"},
		{"negative seeds", []string{"-seeds", "-1"}, "-seeds"},
		{"negative parallel", []string{"-parallel", "-2"}, "-parallel"},
		{"positional junk", []string{"fig5"}, "unexpected arguments"},

		{"trace-format without trace-out", []string{"-trace-format", "chrome"}, "-trace-format requires -trace-out"},
		{"trace-workload without trace-out", []string{"-trace-workload", "genome"}, "-trace-workload requires -trace-out"},
		{"trace-system without trace-out", []string{"-trace-system", "tl2"}, "-trace-system requires -trace-out"},
		{"hybrid-norec traced cell", []string{"-trace-out", "t.json", "-trace-system", "hybrid-norec"}, ""},
		{"trace-threads without trace-out", []string{"-trace-threads", "2"}, "-trace-threads requires -trace-out"},
		{"trace-limit without trace-out", []string{"-trace-limit", "64"}, "-trace-limit requires -trace-out"},
		{"bad trace format", []string{"-trace-out", "t.json", "-trace-format", "xml"}, "unknown trace format"},
		{"unknown trace workload", []string{"-trace-out", "t.json", "-trace-workload", "nope"}, "unknown workload"},
		{"unknown trace system", []string{"-trace-out", "t.json", "-trace-system", "nope"}, "unknown system"},
		// A typo'd system name must list the valid names even when the
		// flag is otherwise inert (no -trace-out): never reach the
		// harness.build panic (PR-3 flag-validation contract).
		{"typo'd system without trace-out", []string{"-trace-system", "no-such-system"}, "unknown system \"no-such-system\""},
		{"typo'd system lists valid names", []string{"-trace-system", "ufo-hybird"}, "hybrid-norec"},
		{"bad trace threads", []string{"-trace-out", "t.json", "-trace-threads", "0"}, "-trace-threads"},
		{"bad trace limit", []string{"-trace-out", "t.json", "-trace-limit", "0"}, "-trace-limit"},

		{"oltp sweep", []string{"-experiment", "oltp", "-scale", "small", "-oltp-out", "o.json"}, ""},
		{"oltp tuned", []string{"-experiment", "oltp", "-oltp-arrival", "mmpp", "-oltp-theta", "1.2",
			"-oltp-read-pct", "50", "-oltp-rmw-pct", "45", "-oltp-scan-pct", "5"}, ""},
		{"oltp-out without oltp", []string{"-oltp-out", "o.json"}, "-oltp-out requires -experiment oltp"},
		{"oltp-arrival without oltp", []string{"-oltp-arrival", "mmpp"}, "-oltp-arrival requires -experiment oltp"},
		{"oltp-theta without oltp", []string{"-experiment", "fig5", "-oltp-theta", "0.5"}, "-oltp-theta requires -experiment oltp"},
		{"unknown arrival process", []string{"-experiment", "oltp", "-oltp-arrival", "uniform"}, "unknown arrival process"},
		{"negative theta", []string{"-experiment", "oltp", "-oltp-theta", "-0.1"}, "-oltp-theta"},
		{"pct out of range", []string{"-experiment", "oltp", "-oltp-read-pct", "120"}, "-oltp-read-pct"},
		{"mix does not sum", []string{"-experiment", "oltp", "-oltp-read-pct", "50", "-oltp-rmw-pct", "20", "-oltp-scan-pct", "5"}, "must sum to 100"},

		{"report without contention-out", []string{"-report", "html"}, "-report requires -contention-out"},
		{"topk without contention-out", []string{"-contention-topk", "4"}, "-contention-topk requires -contention-out"},
		{"window without contention-out", []string{"-timeseries-window", "1000"}, "-timeseries-window requires -contention-out"},
		{"bad report format", []string{"-contention-out", "c.json", "-report", "pdf"}, "unknown report format"},
		{"zero topk", []string{"-contention-out", "c.json", "-contention-topk", "0"}, "-contention-topk"},
		{"zero window with contention", []string{"-contention-out", "c.json", "-timeseries-window", "0"}, "-timeseries-window 0"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg, err := parseConfig(c.args, io.Discard)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("parseConfig(%v) = %v, want ok", c.args, err)
				}
				if cfg == nil {
					t.Fatal("no config returned")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseConfig(%v) succeeded, want error containing %q", c.args, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestParseConfigDefaults: defaults land as documented.
func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.experiment != "all" || cfg.scaleName != "full" || cfg.seed != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.contentionTopK != 16 || cfg.timeseriesWindow != 100_000 || cfg.reportFormat != "json" {
		t.Fatalf("contention defaults = topk %d window %d report %q",
			cfg.contentionTopK, cfg.timeseriesWindow, cfg.reportFormat)
	}
	if len(cfg.set) != 0 {
		t.Fatalf("set = %v, want empty", cfg.set)
	}
}
