// Command tmprobe runs a single (workload, system, threads) cell — for
// debugging and for scripting custom sweeps.
//
//	tmprobe -workload genome -system ufo-hybrid -threads 16 -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/stamp"
)

func main() {
	workload := flag.String("workload", "kmeans-high", "kmeans-high | kmeans-low | vacation-high | vacation-low | genome | ssca2 | intruder | labyrinth | failover")
	system := flag.String("system", "ufo-hybrid", "TM system name")
	threads := flag.Int("threads", 4, "simulated processors")
	scaleName := flag.String("scale", "full", "small | full")
	rate := flag.Int("rate", 0, "failover rate percent (failover workload)")
	traceN := flag.Int("trace", 0, "dump the last N trace events after the run")
	flag.Parse()

	scale := harness.ScaleFull
	if *scaleName == "small" {
		scale = harness.ScaleSmall
	}
	opt := harness.DefaultOptions()

	var mk func() stamp.Workload
	if *workload == "failover" {
		tasks := 60
		if scale == harness.ScaleFull {
			tasks = 200
		}
		mk = func() stamp.Workload { return stamp.NewFailover(tasks, *rate) }
	} else {
		f, ok := harness.FindWorkload(*workload, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "tmprobe: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		mk = f.New
	}

	start := time.Now()
	seq := harness.Run(harness.Sequential, mk(), 1, opt)
	opt.TraceLimit = *traceN
	r := harness.Run(harness.SystemKind(*system), mk(), *threads, opt)
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "tmprobe: validation failed: %v\n", r.Err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s, %d threads: %d simulated cycles, speedup %.2f (wall %v)\n",
		r.Workload, r.System, r.Threads, r.Cycles, r.Speedup(seq.Cycles), time.Since(start).Round(time.Millisecond))
	fmt.Printf("stats: %v\n", &r.Stats)
	fmt.Printf("hw aborts:")
	for reason := 1; reason < machine.NumAbortReasons; reason++ {
		if n := r.Machine.HWAbortsByReason[reason]; n > 0 {
			fmt.Printf(" %s=%d", machine.AbortReason(reason), n)
		}
	}
	fmt.Printf("\nnacks=%d ufoKills(true/false)=%d/%d stmOlder=%d htmOlder=%d\n",
		r.Machine.Nacks, r.Machine.UFOKillsTrue, r.Machine.UFOKillsFalse,
		r.Machine.ConflictSTMOlder, r.Machine.ConflictHTMOlder)
	if r.Trace != nil {
		fmt.Printf("\ntrace (last %d events):\n", *traceN)
		r.Trace.Dump(os.Stdout)
	}
}
