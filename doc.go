// Package repro is a from-scratch Go reproduction of "Using Hardware
// Memory Protection to Build a High-Performance, Strongly-Atomic Hybrid
// Transactional Memory" (Baugh, Neelakantam, Zilles — ISCA 2008).
//
// The paper's two hardware primitives — a best-effort hardware TM (BTM)
// and user-mode fine-grained memory protection (UFO) — do not exist on
// commodity hardware, so this module implements them inside a
// deterministic execution-driven multiprocessor simulator and builds the
// full TM landscape of the paper's evaluation on top: the UFO hybrid (the
// contribution), the HyTM and PhTM hybrid baselines, the USTM software TM
// with and without UFO-based strong atomicity, TL2, an idealized
// unbounded HTM, and sequential/global-lock executors, exercised by
// STAMP-style kmeans / vacation / genome workloads.
//
// Start with examples/quickstart, or regenerate the paper's evaluation
// with cmd/tmsim. See DESIGN.md for the architecture and EXPERIMENTS.md
// for measured-vs-paper results.
package repro
